//! # parsynt-runtime
//!
//! A divide-and-conquer parallel execution runtime for the skeletons
//! ParSynt synthesizes: the programmer (or the synthesizer) supplies the
//! *split* (implicitly: inverse of concatenation over the outer
//! dimension), the *work* (the sequential loop on a chunk) and the
//! *join* (the synthesized `⊙`), and the runtime schedules chunks over
//! OS threads.
//!
//! Two scheduling backends reproduce the paper's §9 comparison:
//!
//! * [`Backend::WorkStealing`] — TBB-flavoured: the input is divided
//!   into grain-sized tasks, distributed over per-worker deques, and
//!   idle workers steal; partial results join in chunk order (joins need
//!   not be commutative).
//! * [`Backend::Static`] — OpenMP-flavoured static scheduling: exactly
//!   one contiguous chunk per thread.
//!
//! A [map-only executor](run_map_only) covers the Prop. 4.3 case where
//! the inner loop nest parallelizes but the outer fold stays sequential
//! (balanced parentheses, §2.1).
//!
//! All executors are panic-isolated: a worker panic is caught, its
//! chunk retried once, and persistent failures degrade the run to
//! sequential re-execution (see the `try_*` entry points and
//! [`RunOutcome`]). The `fault-inject` cargo feature adds a seeded,
//! deterministic fault-injection harness ([`faults`]-module) for
//! exercising those recovery paths.

#![warn(clippy::unwrap_used)]

pub mod error;
pub mod executor;
#[cfg(feature = "fault-inject")]
pub mod faults;
pub mod task;

pub use error::RuntimeError;
pub use executor::{
    reduce_tree, run_map_only, run_parallel, run_sequential, try_reduce_tree, try_run_map_only,
    try_run_parallel, Backend, RunConfig, RunOutcome,
};
#[cfg(feature = "fault-inject")]
pub use executor::{run_map_only_with_faults, run_parallel_with_faults};
#[cfg(feature = "fault-inject")]
pub use faults::{FaultKind, FaultPlan};
pub use task::{DncTask, MapOnlyTask};
