//! The divide-and-conquer task traits.

/// A divide-and-conquer computation over a slice of items: the three
/// components of the skeleton (§1: "the programmer has to specify a
/// split, a work, and a join function"; the split is fixed to the
/// inverse of concatenation).
///
/// Joins must satisfy the homomorphism law
/// `work(x • y) = join(work(x), work(y))` for the executors to be
/// equivalent to the sequential run; they need **not** be commutative —
/// the runtime always joins adjacent chunks in order.
pub trait DncTask: Sync {
    /// Input element type (a row/plane of the outer dimension).
    type Item: Sync;
    /// The accumulator (the loop state `D`, including lifted
    /// auxiliaries).
    type Acc: Send;

    /// `work([])` — the state on an empty chunk (the unit of the join).
    fn identity(&self) -> Self::Acc;

    /// The sequential single-pass loop on one chunk.
    fn work(&self, chunk: &[Self::Item]) -> Self::Acc;

    /// The synthesized join `⊙`, combining adjacent chunk results.
    fn join(&self, left: Self::Acc, right: Self::Acc) -> Self::Acc;
}

/// A map-only parallelization (Prop. 4.3): the inner loop nest runs in
/// parallel as `map`, the outer fold stays sequential.
pub trait MapOnlyTask: Sync {
    /// Input element type.
    type Item: Sync;
    /// The inner nest's from-zero result `𝒢(0̸)(δ)`.
    type Mapped: Send;
    /// The outer loop state.
    type Acc: Send;

    /// The initial outer state.
    fn init(&self) -> Self::Acc;

    /// The inner loop nest from the fixed initial state (the parallel
    /// part).
    fn map(&self, item: &Self::Item) -> Self::Mapped;

    /// The sequential combine `⊚` folding one mapped result into the
    /// outer state.
    fn fold(&self, acc: Self::Acc, mapped: Self::Mapped) -> Self::Acc;
}
