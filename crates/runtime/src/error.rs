//! Typed runtime failures.

use std::fmt;

/// A failure surfaced by the panic-isolated executors.
///
/// Worker panics are caught per chunk ([`std::panic::catch_unwind`]),
/// retried once, and only become an error when the sequential fallback
/// itself panics — so observing this error means the *task* is broken,
/// not the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A worker panicked while computing `chunk` and the failure
    /// persisted through retry and the sequential fallback.
    WorkerPanicked {
        /// Index of the chunk whose computation panicked.
        chunk: usize,
        /// Stringified panic payload (`"<non-string panic>"` when the
        /// payload was not a string).
        payload: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::WorkerPanicked { chunk, payload } => {
                write!(f, "worker panicked on chunk {chunk}: {payload}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
