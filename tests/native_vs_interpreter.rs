//! Cross-checks tying the three artifacts of each benchmark together:
//! the interpreted mini-language source must agree with the native
//! sequential implementation on shared inputs. (The native parallel ==
//! native sequential direction is covered by the property tests; the
//! synthesized-plan == interpreted-source direction by the pipeline
//! tests.)

use parsynt::lang::interp::run_program;
use parsynt::lang::{parse, Value};
use parsynt::suite::benchmark;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn rows(n: usize, m: usize, seed: u64, lo: i64, hi: i64) -> Vec<Vec<i64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..m).map(|_| rng.gen_range(lo..=hi)).collect())
        .collect()
}

fn run_source(id: &str, input: Value) -> parsynt::lang::interp::StateVec {
    let b = benchmark(id).expect("known benchmark");
    let p = parse(b.source).expect("source parses");
    run_program(&p, &[input]).expect("source runs")
}

fn scalar(id: &str, input: Value, var: &str) -> i64 {
    let b = benchmark(id).unwrap();
    let p = parse(b.source).unwrap();
    run_program(&p, &[input])
        .unwrap()
        .scalar_named(&p, var)
        .unwrap_or_else(|| panic!("{id}: no scalar {var}"))
}

#[test]
fn sum_source_matches_native() {
    let data = rows(30, 7, 1, -50, 50);
    let native: i64 = data.iter().flatten().sum();
    assert_eq!(scalar("sum", Value::seq2_of_ints(&data), "s"), native);
}

#[test]
fn mbbs_source_matches_native() {
    let mut rng = SmallRng::seed_from_u64(2);
    let planes: Vec<Vec<Vec<i64>>> = (0..20)
        .map(|_| {
            (0..3)
                .map(|_| (0..4).map(|_| rng.gen_range(-9..=9)).collect())
                .collect()
        })
        .collect();
    let mut mbbs = 0i64;
    for p in &planes {
        let s: i64 = p.iter().flatten().sum();
        mbbs = (mbbs + s).max(0);
    }
    assert_eq!(scalar("mbbs", Value::seq3_of_ints(&planes), "mbbs"), mbbs);
}

#[test]
fn mtls_source_matches_brute_force() {
    let data = rows(12, 5, 3, -9, 9);
    let mut best = 0i64; // mtl starts at 0 in the source
    for i in 0..data.len() {
        for j in 0..data[0].len() {
            let s: i64 = (0..=i).map(|r| data[r][..=j].iter().sum::<i64>()).sum();
            best = best.max(s);
        }
    }
    assert_eq!(scalar("mtls", Value::seq2_of_ints(&data), "mtl"), best);
}

#[test]
fn bp_source_matches_native_fold() {
    // Mirror the native bp (map + fold) against the interpreted source.
    let mut rng = SmallRng::seed_from_u64(4);
    let lines: Vec<Vec<i64>> = (0..30)
        .map(|_| {
            (0..rng.gen_range(1..6))
                .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
                .collect()
        })
        .collect();
    let (mut offset, mut bal, mut cnt) = (0i64, true, 0i64);
    for line in &lines {
        let (mut lo, mut mo) = (0i64, 0i64);
        for &c in line {
            lo += if c == 1 { 1 } else { -1 };
            mo = mo.min(lo);
        }
        bal = bal && offset + mo >= 0;
        offset += lo;
        if bal && lo == 0 && offset == 0 {
            cnt += 1;
        }
    }
    assert_eq!(scalar("bp", Value::seq2_of_ints(&lines), "cnt"), cnt);
}

#[test]
fn mode_source_matches_native() {
    let mut rng = SmallRng::seed_from_u64(5);
    let data: Vec<i64> = (0..200).map(|_| rng.gen_range(0..8)).collect();
    let mut counts = [0i64; 8];
    for &v in &data {
        counts[v as usize] += 1;
    }
    let native = counts.iter().copied().max().unwrap();
    assert_eq!(scalar("mode", Value::seq_of_ints(&data), "mode"), native);
}

#[test]
fn balanced_substrings_source_matches_native() {
    let mut rng = SmallRng::seed_from_u64(6);
    let data: Vec<i64> = (0..300)
        .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
        .collect();
    let (mut matched, mut open) = (0i64, 0i64);
    for &c in &data {
        if c == 1 {
            open += 1;
        } else if open > 0 {
            open -= 1;
            matched += 1;
        }
    }
    assert_eq!(
        scalar("balanced_substrings", Value::seq_of_ints(&data), "matched"),
        matched
    );
}

#[test]
fn max_dist_source_matches_native() {
    let mut rng = SmallRng::seed_from_u64(7);
    let data: Vec<i64> = (0..150).map(|_| rng.gen_range(-50..=50)).collect();
    let native = data.windows(2).map(|w| (w[1] - w[0]).abs()).max().unwrap();
    assert_eq!(scalar("max_dist", Value::seq_of_ints(&data), "md"), native);
}

#[test]
fn range_counters_match_native_predicates() {
    let mut rng = SmallRng::seed_from_u64(8);
    let pairs: Vec<Vec<i64>> = (0..120)
        .map(|_| {
            let a = rng.gen_range(-30..=30);
            let b = rng.gen_range(-30..=30);
            vec![a, b]
        })
        .collect();
    let norm: Vec<(i64, i64)> = pairs
        .iter()
        .map(|p| (p[0].min(p[1]), p[0].max(p[1])))
        .collect();
    let count = |pred: &dyn Fn((i64, i64), (i64, i64)) -> bool| -> i64 {
        norm.windows(2).filter(|w| pred(w[0], w[1])).count() as i64
    };
    let input = Value::seq2_of_ints(&pairs);
    assert_eq!(
        scalar("intersecting_ranges", input.clone(), "cnt"),
        count(&|p, c| p.0.max(c.0) <= p.1.min(c.1))
    );
    assert_eq!(
        scalar("increasing_ranges", input.clone(), "cnt"),
        count(&|p, c| c.0 > p.0)
    );
    assert_eq!(
        scalar("overlapping_ranges", input.clone(), "cnt"),
        count(&|p, c| c.0 <= p.1 && c.1 > p.1)
    );
    assert_eq!(
        scalar("pyramid_ranges", input, "cnt"),
        count(&|p, c| p.0 < c.0 && c.1 < p.1)
    );
}

#[test]
fn strip_benchmarks_match_native() {
    let data = rows(25, 6, 9, -50, 50);
    let input = Value::seq2_of_ints(&data);
    let row_sums: Vec<i64> = data.iter().map(|r| r.iter().sum()).collect();

    // max top strip
    let mut cur = 0i64;
    let mut mts = 0i64;
    for &s in &row_sums {
        cur += s;
        mts = mts.max(cur);
    }
    assert_eq!(scalar("max_top_strip", input.clone(), "mts"), mts);

    // max bottom strip
    let mut mbs = 0i64;
    for &s in &row_sums {
        mbs = (mbs + s).max(0);
    }
    assert_eq!(scalar("max_bottom_strip", input.clone(), "mbs"), mbs);

    // max segment strip (Kadane)
    let mut k = 0i64;
    let mut best = 0i64;
    for &s in &row_sums {
        k = (k + s).max(0);
        best = best.max(k);
    }
    assert_eq!(scalar("max_segment_strip", input, "best"), best);
}

#[test]
fn sorted_source_detects_both_outcomes() {
    let asc = vec![vec![1, 2, 3], vec![4, 5, 6]];
    let out = run_source("sorted", Value::seq2_of_ints(&asc));
    let b = benchmark("sorted").unwrap();
    let p = parse(b.source).unwrap();
    assert_eq!(out.bool_named(&p, "srt"), Some(true));
    let desc = vec![vec![1, 5, 3], vec![4, 5, 6]];
    let out = run_source("sorted", Value::seq2_of_ints(&desc));
    assert_eq!(out.bool_named(&p, "srt"), Some(false));
}

#[test]
fn min_max_col_source_matches_native() {
    let data = rows(15, 4, 11, -50, 50);
    let b = benchmark("min_max_col").unwrap();
    let p = parse(b.source).unwrap();
    let out = run_program(&p, &[Value::seq2_of_ints(&data)]).unwrap();
    for j in 0..4 {
        let col: Vec<i64> = data.iter().map(|r| r[j]).collect();
        let cmin = out.value_named(&p, "cmin").unwrap().as_seq().unwrap()[j]
            .as_int()
            .unwrap();
        let cmax = out.value_named(&p, "cmax").unwrap().as_seq().unwrap()[j]
            .as_int()
            .unwrap();
        assert_eq!(cmin, col.iter().copied().min().unwrap());
        assert_eq!(cmax, col.iter().copied().max().unwrap());
    }
}

#[test]
fn lcs_source_is_longest_aligned_run() {
    let pairs = vec![
        vec![1, 1],
        vec![2, 2],
        vec![3, 0],
        vec![4, 4],
        vec![5, 5],
        vec![6, 6],
    ];
    assert_eq!(scalar("lcs", Value::seq2_of_ints(&pairs), "best"), 3);
}
