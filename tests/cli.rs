//! End-to-end tests of the `parsynt` command-line tool, driving the real
//! binary over the shipped example programs.

use std::process::Command;

fn parsynt(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_parsynt"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = parsynt(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("parallelize"));
    assert!(stdout.contains("bench-list"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = parsynt(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn missing_file_is_reported() {
    let (ok, _, stderr) = parsynt(&["parallelize", "no/such/file.psl"]);
    assert!(!ok);
    assert!(stderr.contains("no/such/file.psl"));
}

#[test]
fn bench_list_names_all_27() {
    let (ok, stdout, _) = parsynt(&["bench-list"]);
    assert!(ok);
    for id in ["mbbs", "mtls", "bp", "lcs", "sum", "mode"] {
        assert!(stdout.contains(id), "missing `{id}` in:\n{stdout}");
    }
    assert_eq!(stdout.lines().count(), 28); // header + 27 benchmarks
}

#[test]
fn parallelize_sum_prints_join() {
    let (ok, stdout, stderr) = parsynt(&["parallelize", "programs/sum2d.psl"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("divide-and-conquer"), "{stdout}");
    assert!(stdout.contains("synthesized join"), "{stdout}");
    assert!(stdout.contains("s__l + s__r"), "{stdout}");
    assert!(stdout.contains("HomomorphismJoin"), "{stdout}");
}

#[test]
fn run_sum_executes_and_agrees() {
    let (ok, stdout, stderr) = parsynt(&[
        "run",
        "programs/sum2d.psl",
        "--threads",
        "3",
        "--rows",
        "24",
        "--cols",
        "8",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("results agree"), "{stdout}");
    assert!(stdout.contains("s = "), "{stdout}");
}

/// `run --stream` pages the generated input through the executor in
/// chunks, prints progressive snapshots, and cross-checks the
/// end-of-input state against the batch run (the binary exits non-zero
/// on any mismatch, so success here *is* the byte-identity check).
#[test]
fn run_stream_snapshots_and_agrees_with_batch() {
    let (ok, stdout, stderr) = parsynt(&[
        "run",
        "programs/sum2d.psl",
        "--threads",
        "3",
        "--rows",
        "40",
        "--cols",
        "6",
        "--stream",
        "--chunk-rows",
        "7",
        "--snapshot-every",
        "2",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("[stream]"), "{stdout}");
    assert!(stdout.contains("rows/s"), "{stdout}");
    assert!(stdout.contains("matches the batch run"), "{stdout}");
}

/// The JSON report for a streamed run carries the optional `stream`
/// block with chunk/element/snapshot counts, still under schema v1.
#[test]
fn run_stream_json_reports_the_stream_block() {
    let (ok, stdout, stderr) = parsynt(&[
        "run",
        "programs/mbbs.psl",
        "--threads",
        "2",
        "--rows",
        "30",
        "--cols",
        "5",
        "--stream",
        "--chunk-rows",
        "8",
        "--json",
    ]);
    assert!(ok, "stderr: {stderr}");
    let report: parsynt::core::PipelineReportJson =
        serde_json::from_str(&stdout).expect("stdout is a PipelineReport");
    let stream = report.stream.expect("stream block present");
    assert_eq!(stream.chunks, 4, "{stdout}"); // ceil(30 / 8)
    assert_eq!(stream.elements, 30, "{stdout}");
    assert_eq!(stream.degraded_chunks, 0, "{stdout}");
    assert!(stream.snapshots >= 1, "{stdout}");

    // Batch runs stay byte-identical: no `stream` key at all.
    let (ok, stdout, _) = parsynt(&[
        "run",
        "programs/mbbs.psl",
        "--threads",
        "2",
        "--rows",
        "10",
        "--cols",
        "4",
        "--json",
    ]);
    assert!(ok);
    assert!(!stdout.contains("\"stream\""), "{stdout}");
}

#[test]
fn check_sum_verifies_the_law() {
    let (ok, stdout, stderr) = parsynt(&["check", "programs/sum2d.psl", "--tests", "30"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("held on 30 random splits"), "{stdout}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let (ok, _, stderr) = parsynt(&["parallelize", "programs/sum2d.psl", "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"), "{stderr}");
}

#[test]
fn parallelize_json_emits_a_report() {
    let (ok, stdout, stderr) = parsynt(&["parallelize", "programs/sum2d.psl", "--json"]);
    assert!(ok, "stderr: {stderr}");
    let report: parsynt::core::PipelineReportJson =
        serde_json::from_str(&stdout).expect("stdout is a PipelineReport");
    assert_eq!(report.outcome, "divide_and_conquer");
    assert!(report.phase_timings.contains_key("total"));
}

/// `--cache-dir` across two invocations of the binary: the second run
/// finds the first run's solution on disk and reports a cache hit
/// without synthesis timings.
#[test]
fn cache_dir_reserves_across_processes() {
    let cache_dir = std::env::temp_dir().join(format!("parsynt-cli-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let args = [
        "parallelize",
        "programs/sum2d.psl",
        "--json",
        "--cache-dir",
        cache_dir.to_str().unwrap(),
    ];

    let (ok, stdout, stderr) = parsynt(&args);
    assert!(ok, "stderr: {stderr}");
    let cold: parsynt::core::PipelineReportJson = serde_json::from_str(&stdout).unwrap();
    assert!(!cold.cache_hit);
    assert!(cold.phase_timings.contains_key("synthesize"));

    let (ok, stdout, stderr) = parsynt(&args);
    assert!(ok, "stderr: {stderr}");
    let warm: parsynt::core::PipelineReportJson = serde_json::from_str(&stdout).unwrap();
    assert!(warm.cache_hit, "{stdout}");
    assert!(!warm.phase_timings.contains_key("synthesize"), "{stdout}");
    assert_eq!(warm.outcome, cold.outcome);

    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// `serve` is wired into the binary: a bad bind address fails fast with
/// the io exit code rather than being rejected as an unknown command.
#[test]
fn serve_rejects_an_unbindable_address() {
    let (ok, _, stderr) = parsynt(&["serve", "--addr", "256.0.0.1:0"]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
}

/// The acceptance path: `bench <id> --json --trace out.jsonl` must emit
/// a serde-valid `PipelineReport` with non-zero normalize/synthesize
/// timings AND a JSONL trace carrying rewrite-rule, CEGIS-round, and
/// runtime-executor events.
#[test]
fn bench_json_trace_reports_phases_and_events() {
    let trace_path =
        std::env::temp_dir().join(format!("parsynt-cli-trace-{}.jsonl", std::process::id()));
    let (ok, stdout, stderr) = parsynt(&[
        "bench",
        "max_bottom_strip",
        "--json",
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");

    let report: parsynt::core::PipelineReportJson =
        serde_json::from_str(&stdout).expect("stdout is a PipelineReport");
    assert_eq!(report.outcome, "divide_and_conquer", "{stdout}");
    assert!(report.phase_timings["normalize"] > 0.0, "{stdout}");
    assert!(report.phase_timings["synthesize"] > 0.0, "{stdout}");
    assert!(
        report.counters.contains_key("synthesize.cegis_round"),
        "{stdout}"
    );

    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let mut seen = std::collections::BTreeSet::new();
    for line in trace.lines() {
        let event: serde_json::Value = serde_json::from_str(line).expect("each line is JSON");
        seen.insert(format!(
            "{}.{}",
            event["phase"].as_str().unwrap(),
            event["name"].as_str().unwrap()
        ));
    }
    for expected in [
        "normalize.rule_fired",
        "synthesize.cegis_round",
        "execute.run_parallel",
        "execute.worker_steals",
        "schema.outcome",
    ] {
        assert!(seen.contains(expected), "missing `{expected}` in {seen:?}");
    }
    std::fs::remove_file(&trace_path).ok();
}
