//! Deterministic fault-sweep: under seeded injected faults (worker
//! panics, poisoned chunk results, stragglers) every executor must
//! produce results byte-identical to the fault-free run — transient
//! faults recover through the single retry, persistent faults through
//! the sequential fallback — and parallel candidate screening must
//! reject a panicking candidate without losing the true winner.
//!
//! Gated on the `fault-inject` cargo feature:
//! `cargo test --features fault-inject`.
#![cfg(feature = "fault-inject")]

use parsynt::runtime::{Backend, DncTask, Executor, FaultPlan, MapOnlyTask, RunConfig};
use parsynt::synth::parallel::screen_batch;
use std::time::Duration;

/// Non-commutative concatenation: any executor that reorders, drops, or
/// duplicates a chunk under faults changes the result.
struct Concat;
impl DncTask for Concat {
    type Item = i64;
    type Acc = Vec<i64>;
    fn identity(&self) -> Vec<i64> {
        Vec::new()
    }
    fn work(&self, chunk: &[i64]) -> Vec<i64> {
        chunk.to_vec()
    }
    fn join(&self, mut l: Vec<i64>, r: Vec<i64>) -> Vec<i64> {
        l.extend(r);
        l
    }
}

struct CountPositive;
impl MapOnlyTask for CountPositive {
    type Item = i64;
    type Mapped = bool;
    type Acc = usize;
    fn init(&self) -> usize {
        0
    }
    fn map(&self, item: &i64) -> bool {
        *item > 0
    }
    fn fold(&self, acc: usize, mapped: bool) -> usize {
        acc + usize::from(mapped)
    }
}

fn data(n: usize) -> Vec<i64> {
    (0..n as i64).map(|x| (x * 7919) % 211 - 100).collect()
}

fn mixed_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_panic_rate(0.25)
        .with_poison_rate(0.15)
        .with_delay(0.1, Duration::from_millis(1))
}

#[test]
fn transient_fault_sweep_is_byte_identical() {
    let d = data(5_000);
    let baseline = Executor::default().run_sequential(&Concat, &d);
    for seed in 0..16 {
        let plan = mixed_plan(seed);
        for backend in [Backend::Static, Backend::WorkStealing] {
            let cfg = RunConfig {
                threads: 4,
                grain: 97,
                backend,
            };
            let out = Executor::new(cfg)
                .with_faults(plan.clone())
                .run(&Concat, &d)
                .unwrap_or_else(|e| panic!("seed {seed} backend {backend:?}: {e}"));
            assert_eq!(out.value, baseline, "seed {seed} backend {backend:?}");
            // Transient faults fire only on the first attempt, so the
            // single retry always recovers without degrading.
            assert!(!out.degraded, "seed {seed} backend {backend:?}");
        }
    }
}

#[test]
fn persistent_fault_sweep_recovers_via_sequential_fallback() {
    let d = data(5_000);
    let baseline = Executor::default().run_sequential(&Concat, &d);
    let mut degraded_runs = 0usize;
    for seed in 0..16 {
        let plan = mixed_plan(seed).persistent(true);
        let cfg = RunConfig::work_stealing(4).with_grain(97);
        let out = Executor::new(cfg)
            .with_faults(plan)
            .run(&Concat, &d)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(out.value, baseline, "seed {seed}");
        degraded_runs += usize::from(out.degraded);
    }
    // With ~40% of 52 chunks faulting persistently, essentially every
    // seed must have hit the sequential fallback.
    assert!(degraded_runs > 0, "no persistent fault ever fired");
}

#[test]
fn map_only_fault_sweep_is_byte_identical() {
    let d = data(4_000);
    let baseline = Executor::new(RunConfig::default().with_threads(1))
        .run_map_only(&CountPositive, &d)
        .expect("fault-free baseline")
        .value;
    let four = RunConfig::default().with_threads(4);
    for seed in 0..16 {
        let out = Executor::new(four)
            .with_faults(mixed_plan(seed))
            .run_map_only(&CountPositive, &d)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(out.value, baseline, "seed {seed}");
        let out = Executor::new(four)
            .with_faults(mixed_plan(seed).persistent(true))
            .run_map_only(&CountPositive, &d)
            .unwrap_or_else(|e| panic!("seed {seed} (persistent): {e}"));
        assert_eq!(out.value, baseline, "seed {seed} (persistent)");
    }
}

/// Streaming under injected faults: for every seed, both transient and
/// persistent fault plans must leave every mid-stream snapshot equal to
/// the fault-free aggregate of the exact consumed prefix (not just the
/// final value), with the non-commutative task catching any reorder.
#[test]
fn streaming_fault_sweep_has_byte_identical_snapshots() {
    let d = data(5_000);
    let chunk_len = 613; // deliberately not a divisor of the length
    for seed in 0..16 {
        for persistent in [false, true] {
            let plan = mixed_plan(seed).persistent(persistent);
            let exec = Executor::new(RunConfig::work_stealing(4).with_grain(97)).with_faults(plan);
            let mut session = exec.stream(&Concat);
            let mut consumed = 0usize;
            for chunk in d.chunks(chunk_len) {
                session
                    .push_chunk(chunk)
                    .unwrap_or_else(|e| panic!("seed {seed} persistent {persistent}: {e}"));
                consumed += chunk.len();
                let snap = session.snapshot();
                assert_eq!(
                    snap.value,
                    d[..consumed],
                    "seed {seed} persistent {persistent}: prefix of {consumed}"
                );
                assert_eq!(snap.elements, consumed as u64);
            }
            let out = session.finish();
            assert_eq!(out.value, d, "seed {seed} persistent {persistent}");
            assert_eq!(out.elements, d.len() as u64);
            if !persistent {
                // Transient faults fire only on attempt 0; the single
                // retry absorbs them without degrading any chunk.
                assert_eq!(out.degraded_chunks, 0, "seed {seed}");
            }
        }
    }
}

#[test]
fn screening_batches_survive_panicking_candidates() {
    // The screen evaluates synthesized candidates; a candidate whose
    // evaluation panics must be rejected in isolation without tearing
    // down the pool or displacing the true (minimum-index) winner.
    let items: Vec<usize> = (0..500).collect();
    let winner_idx = 491usize;
    // Pick a seed whose schedule leaves the winner clean but panics at
    // least one earlier candidate — so the sweep provably exercises the
    // isolation path.
    let seed = (0u64..)
        .find(|&s| {
            let plan = FaultPlan::seeded(s).with_panic_rate(0.3);
            plan.decide(winner_idx, 0).is_none()
                && (0..winner_idx).any(|i| plan.decide(i, 0).is_some())
        })
        .expect("a suitable seed exists");
    let plan = FaultPlan::seeded(seed)
        .with_panic_rate(0.3)
        .persistent(true);
    for threads in [1, 2, 4, 8] {
        let out = screen_batch(threads, &items, &|i: &usize| {
            plan.apply(*i, 0);
            *i == winner_idx
        });
        assert_eq!(out.winner, Some(winner_idx), "threads = {threads}");
        assert!(out.panics > 0, "threads = {threads}: no candidate panicked");
    }
}
