//! Deadline responsiveness: a pipeline whose synthesis deadline has
//! already expired must return promptly — on *any* program — with a
//! typed `deadline exceeded` outcome instead of searching. This is the
//! liveness half of the deadline contract; `schema::deadline` tests
//! cover the accounting half.

use parsynt::core::{Pipeline, PipelineConfig};
use parsynt::lang::parse;
use parsynt::suite::all_benchmarks;
use parsynt::synth::report::SynthConfig;
use proptest::prelude::*;
use std::time::{Duration, Instant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// An already-expired deadline cuts the search off before any
    /// candidate is tried: the run finishes well under 100ms even on
    /// the heaviest benchmarks, and reports the cut in its outcome.
    #[test]
    fn expired_deadline_returns_promptly(bench_idx in 0usize..64, seed in 0u64..1_000) {
        let benches = all_benchmarks();
        let b = &benches[bench_idx % benches.len()];
        let program = parse(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.id));
        let cfg = SynthConfig::default().with_seed(seed).with_timeout_ms(0);
        let started = Instant::now();
        let report = Pipeline::new(&program)
            .configure(
                PipelineConfig::default()
                    .with_profile(b.profile.clone())
                    .with_synth(cfg),
            )
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", b.id));
        let elapsed = started.elapsed();
        prop_assert!(
            elapsed < Duration::from_millis(100),
            "{}: expired-deadline run took {elapsed:?}",
            b.id
        );
        // The cut is visible in the report, not silently absorbed.
        prop_assert!(
            report.report().deadline_exceeded,
            "{}: deadline cut not reported",
            b.id
        );
    }
}
