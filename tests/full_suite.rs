//! The exhaustive pipeline sweep over all 27 benchmarks — the test-suite
//! twin of the `table1` harness binary. Marked `#[ignore]` because it
//! takes several minutes; run with
//!
//! ```sh
//! cargo test --release --test full_suite -- --ignored
//! ```

use parsynt::core::{run_divide_and_conquer, Outcome, Pipeline, PipelineConfig};
use parsynt::lang::interp::run_program;
use parsynt::lang::parse;
use parsynt::suite::{all_benchmarks, ExpectedOutcome};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
#[ignore = "runs the full synthesis pipeline on all 27 benchmarks (minutes)"]
fn every_benchmark_matches_the_paper_outcome() {
    for b in all_benchmarks() {
        let program = parse(b.source).expect(b.id);
        let plan = Pipeline::new(&program)
            .configure(PipelineConfig::default().with_profile(b.profile.clone()))
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", b.id))
            .parallelization;
        match b.expected {
            ExpectedOutcome::DivideAndConquer => assert!(
                plan.is_divide_and_conquer(),
                "{}: expected d&c, got {:?}",
                b.id,
                plan.outcome
            ),
            ExpectedOutcome::MapOnly => {
                assert!(plan.is_map_only(), "{}: {:?}", b.id, plan.outcome)
            }
            ExpectedOutcome::Fails => {
                assert!(plan.is_unparallelizable(), "{}: {:?}", b.id, plan.outcome)
            }
        }
        // Every plan respects the §6 complexity budget.
        parsynt::core::validate_budget(&plan).unwrap_or_else(|e| panic!("{}: {e}", b.id));
        // For every divide-and-conquer plan, execute it and cross-check.
        if let Outcome::DivideAndConquer { .. } = plan.outcome {
            let f = parsynt::lang::functional::RightwardFn::new(&plan.program).unwrap();
            let mut rng = SmallRng::seed_from_u64(77);
            for _ in 0..3 {
                let inputs = parsynt::synth::examples::random_inputs(&f, &b.profile, &mut rng);
                let seq = run_program(&plan.program, &inputs).unwrap();
                let par = run_divide_and_conquer(&plan, &inputs, 4).unwrap();
                assert_eq!(par, seq, "{}: parallel != sequential", b.id);
            }
        }
        eprintln!("{}: ok", b.id);
    }
}
