//! Property-based tests of the homomorphism law on every native
//! workload: for random inputs and split points,
//! `join(work(x), work(y)) == work(x • y)` — i.e. parallel execution at
//! any chunking equals the sequential pass.

use parsynt::runtime::RunConfig;
use parsynt::suite::native::workloads;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every workload agrees between sequential and work-stealing
    /// parallel execution at arbitrary thread counts and grains.
    #[test]
    fn parallel_equals_sequential(
        seed in 0u64..5_000,
        threads in 1usize..9,
        grain in 1usize..64,
        total in 2_000usize..10_000,
    ) {
        for w in workloads() {
            let prepared = (w.prepare)(total, seed);
            let seq = prepared.sequential();
            let cfg = RunConfig::work_stealing(threads).with_grain(grain);
            prop_assert_eq!(prepared.parallel(cfg), seq, "workload {}", w.id);
        }
    }

    /// The static (OpenMP-style) backend agrees as well.
    #[test]
    fn static_backend_equals_sequential(
        seed in 0u64..5_000,
        threads in 1usize..9,
        total in 2_000usize..8_000,
    ) {
        for w in workloads() {
            let prepared = (w.prepare)(total, seed);
            let seq = prepared.sequential();
            let cfg = RunConfig::static_schedule(threads).with_grain(8);
            prop_assert_eq!(prepared.parallel(cfg), seq, "workload {}", w.id);
        }
    }
}
