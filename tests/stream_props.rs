//! Streaming soundness properties: for *any* chunking of *any*
//! generated input, the streaming aggregate at end-of-input equals
//! `run_sequential` on the concatenation, and every mid-stream snapshot
//! equals the sequential aggregate of exactly the consumed prefix. The
//! task is non-commutative concatenation, so any reordered, dropped, or
//! duplicated chunk falsifies the property.

use parsynt::runtime::{Backend, DncTask, Executor, RunConfig};
use proptest::prelude::*;

/// Non-commutative concatenation over i64 items.
struct Concat;
impl DncTask for Concat {
    type Item = i64;
    type Acc = Vec<i64>;
    fn identity(&self) -> Vec<i64> {
        Vec::new()
    }
    fn work(&self, chunk: &[i64]) -> Vec<i64> {
        chunk.to_vec()
    }
    fn join(&self, mut l: Vec<i64>, r: Vec<i64>) -> Vec<i64> {
        l.extend(r);
        l
    }
}

/// Paired sum + minimum: a second task whose accumulator mixes values
/// rather than preserving them, catching join-order bugs Concat cannot
/// (e.g. an identity element folded in at the wrong moment).
struct SumMin;
impl DncTask for SumMin {
    type Item = i64;
    type Acc = (i64, i64);
    fn identity(&self) -> (i64, i64) {
        (0, i64::MAX)
    }
    fn work(&self, chunk: &[i64]) -> (i64, i64) {
        chunk
            .iter()
            .fold((0, i64::MAX), |(s, m), &x| (s + x, m.min(x)))
    }
    fn join(&self, l: (i64, i64), r: (i64, i64)) -> (i64, i64) {
        (l.0 + r.0, l.1.min(r.1))
    }
}

/// Split `data` at the given cut points (any subset of positions).
fn chunkings(data: &[i64], cuts: &[usize]) -> Vec<Vec<i64>> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (data.len() + 1)).collect();
    bounds.push(0);
    bounds.push(data.len());
    bounds.sort_unstable();
    bounds.dedup();
    bounds
        .windows(2)
        .map(|w| data[w[0]..w[1]].to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// End-of-input equality for arbitrary data, arbitrary cut points,
    /// both backends, and varying grain.
    #[test]
    fn any_chunking_streams_to_the_sequential_aggregate(
        data in proptest::collection::vec(-1_000i64..1_000, 0..400),
        cuts in proptest::collection::vec(0usize..400, 0..12),
        grain in 1usize..64,
        stealing in any::<bool>(),
    ) {
        let backend = if stealing { Backend::WorkStealing } else { Backend::Static };
        let cfg = RunConfig { threads: 3, grain, backend };
        let exec = Executor::new(cfg);
        let expected = exec.run_sequential(&Concat, &data);
        let chunks = chunkings(&data, &cuts);
        let out = exec.run_stream(&Concat, &chunks).unwrap();
        prop_assert_eq!(&out.value, &expected);
        prop_assert_eq!(out.elements, data.len() as u64);
        prop_assert_eq!(out.degraded_chunks, 0);

        let expected2 = exec.run_sequential(&SumMin, &data);
        let out2 = exec.run_stream(&SumMin, &chunks).unwrap();
        prop_assert_eq!(out2.value, expected2);
    }

    /// Prefix equality of every snapshot: after each pushed chunk the
    /// snapshot equals `run_sequential` on exactly the consumed prefix.
    #[test]
    fn every_snapshot_is_the_aggregate_of_its_prefix(
        data in proptest::collection::vec(-1_000i64..1_000, 1..300),
        cuts in proptest::collection::vec(0usize..300, 0..10),
    ) {
        let exec = Executor::new(RunConfig::work_stealing(2).with_grain(16));
        let mut session = exec.stream(&Concat);
        let mut consumed = 0usize;
        for chunk in chunkings(&data, &cuts) {
            session.push_chunk(&chunk).unwrap();
            consumed += chunk.len();
            let snap = session.snapshot();
            prop_assert_eq!(&snap.value, &data[..consumed]);
            prop_assert_eq!(snap.elements, consumed as u64);
        }
        let out = session.finish();
        prop_assert_eq!(out.value, data);
    }
}

/// The same properties under seeded fault injection: 16-seed sweep,
/// transient and persistent plans, snapshot prefix-equality throughout.
#[cfg(feature = "fault-inject")]
mod faulty {
    use super::*;
    use parsynt::runtime::FaultPlan;
    use std::time::Duration;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn snapshots_stay_prefix_exact_under_faults(
            data in proptest::collection::vec(-500i64..500, 1..300),
            cuts in proptest::collection::vec(0usize..300, 0..8),
            seed in 0u64..16,
            persistent in any::<bool>(),
        ) {
            let plan = FaultPlan::seeded(seed)
                .with_panic_rate(0.25)
                .with_poison_rate(0.15)
                .with_delay(0.05, Duration::from_micros(200))
                .persistent(persistent);
            let exec = Executor::new(RunConfig::work_stealing(4).with_grain(13))
                .with_faults(plan);
            let mut session = exec.stream(&Concat);
            let mut consumed = 0usize;
            for chunk in chunkings(&data, &cuts) {
                session.push_chunk(&chunk).unwrap();
                consumed += chunk.len();
                let snap = session.snapshot();
                prop_assert_eq!(&snap.value, &data[..consumed]);
            }
            let out = session.finish();
            prop_assert_eq!(&out.value, &data);
            if !persistent {
                // Transient faults fire only on the first attempt, so
                // the retry always absorbs them without degrading.
                prop_assert_eq!(out.degraded_chunks, 0);
            }
        }
    }
}
