//! Parallel candidate screening must be *observably deterministic*:
//! the synthesized artifacts at `--synth-threads N` are byte-identical
//! to the sequential (1-thread) run's on every benchmark. This holds
//! because a candidate's verdict depends only on the example set, and
//! the screen's first-verified-solution-wins protocol breaks ties by
//! minimum generation index — exactly the candidate the sequential
//! scan would accept.

use parsynt::core::{Outcome, Pipeline, PipelineConfig};
use parsynt::lang::parse;
use parsynt::lang::pretty::program_to_string;
use parsynt::suite::{all_benchmarks, benchmark, Benchmark};
use parsynt::synth::report::SynthConfig;
use parsynt::synth::SynthesizedJoin;

/// Everything about a run that must not depend on the thread count.
struct Artifacts {
    outcome: &'static str,
    join: Option<SynthesizedJoin>,
    join_text: Option<String>,
    program_text: String,
}

fn synthesize(b: &Benchmark, threads: usize) -> Artifacts {
    let program = parse(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.id));
    let plan = Pipeline::new(&program)
        .configure(
            PipelineConfig::default()
                .with_profile(b.profile.clone())
                .with_synth(SynthConfig::default().with_threads(threads)),
        )
        .run()
        .unwrap_or_else(|e| panic!("{}: {e}", b.id))
        .parallelization;
    let (outcome, join) = match plan.outcome {
        Outcome::DivideAndConquer { join, .. } => ("divide_and_conquer", Some(join)),
        Outcome::MapOnly => ("map_only", None),
        Outcome::Unparallelizable { .. } => ("unparallelizable", None),
    };
    Artifacts {
        outcome,
        join_text: join.as_ref().map(|j| j.render(&plan.program)),
        join,
        program_text: program_to_string(&plan.program),
    }
}

fn assert_deterministic(b: &Benchmark, widths: &[usize]) {
    let base = synthesize(b, 1);
    for &threads in widths {
        let par = synthesize(b, threads);
        assert_eq!(
            base.outcome, par.outcome,
            "{}: outcome changed at {threads} threads",
            b.id
        );
        assert_eq!(
            base.join, par.join,
            "{}: synthesized join differs at {threads} threads",
            b.id
        );
        assert_eq!(
            base.join_text, par.join_text,
            "{}: rendered join differs at {threads} threads",
            b.id
        );
        assert_eq!(
            base.program_text, par.program_text,
            "{}: transformed program differs at {threads} threads",
            b.id
        );
    }
}

fn check(id: &str, widths: &[usize]) {
    let b = benchmark(id).expect("known benchmark");
    assert_deterministic(&b, widths);
}

#[test]
fn sum_is_thread_count_invariant() {
    check("sum", &[2, 4]);
}

#[test]
fn min_max_is_thread_count_invariant() {
    check("min_max", &[2, 4]);
}

#[test]
fn max_top_strip_is_thread_count_invariant() {
    check("max_top_strip", &[2, 4]);
}

#[test]
fn max_bottom_strip_is_thread_count_invariant() {
    check("max_bottom_strip", &[2, 4]);
}

#[test]
fn mbbs_is_thread_count_invariant() {
    check("mbbs", &[4]);
}

#[test]
fn max_dist_is_thread_count_invariant() {
    check("max_dist", &[4]);
}

#[test]
#[ignore = "sweeps the full synthesis pipeline over all 27 benchmarks twice (minutes)"]
fn every_benchmark_is_thread_count_invariant() {
    for b in all_benchmarks() {
        assert_deterministic(&b, &[4]);
        eprintln!("{}: deterministic at 4 threads", b.id);
    }
}
