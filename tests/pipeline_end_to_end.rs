//! End-to-end pipeline tests on a fast subset of the suite: parse the
//! source, run the Figure-7 schema, check the expected outcome, and
//! execute the synthesized plan on threads against the sequential
//! interpreter. (The full 27-benchmark sweep is the `table1` harness
//! binary — it takes several minutes.)

use parsynt::core::{run_divide_and_conquer, Outcome, Pipeline, PipelineConfig};
use parsynt::lang::interp::run_program;
use parsynt::lang::parse;
use parsynt::suite::{benchmark, ExpectedOutcome};
use parsynt::synth::examples::InputProfile;
use parsynt::synth::report::SynthConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run_benchmark(id: &str) {
    let b = benchmark(id).expect("known benchmark");
    let program = parse(b.source).expect("parses");
    let cfg = SynthConfig::default();
    let plan = Pipeline::new(&program)
        .configure(
            PipelineConfig::default()
                .with_profile(b.profile.clone())
                .with_synth(cfg),
        )
        .run()
        .expect("pipeline runs")
        .parallelization;

    parsynt::core::validate_budget(&plan).expect("within the §6 budget");
    match b.expected {
        ExpectedOutcome::DivideAndConquer => {
            assert!(
                matches!(plan.outcome, Outcome::DivideAndConquer { .. }),
                "{id}: expected d&c, got {:?}",
                plan.outcome
            );
            // The join is associative (Definition 3.2).
            let checks = parsynt::core::check_join_associativity(&plan, &b.profile, 10, 5)
                .expect("associativity holds");
            assert_eq!(checks, 10);
            // Execute the synthesized plan and cross-check on random
            // inputs from the benchmark's own profile.
            let f = parsynt::lang::functional::RightwardFn::new(&plan.program).unwrap();
            let mut rng = SmallRng::seed_from_u64(123);
            for _ in 0..5 {
                let inputs = parsynt::synth::examples::random_inputs(&f, &b.profile, &mut rng);
                let seq = run_program(&plan.program, &inputs).unwrap();
                let par = run_divide_and_conquer(&plan, &inputs, 3).unwrap();
                assert_eq!(par, seq, "{id}: parallel != sequential");
            }
        }
        ExpectedOutcome::MapOnly => {
            assert!(matches!(plan.outcome, Outcome::MapOnly), "{id}");
        }
        ExpectedOutcome::Fails => {
            assert!(
                matches!(plan.outcome, Outcome::Unparallelizable { .. }),
                "{id}"
            );
        }
    }
}

#[test]
fn sum_end_to_end() {
    run_benchmark("sum");
}

#[test]
fn min_max_end_to_end() {
    run_benchmark("min_max");
}

#[test]
fn max_top_strip_end_to_end() {
    run_benchmark("max_top_strip");
}

#[test]
fn max_bottom_strip_end_to_end() {
    run_benchmark("max_bottom_strip");
}

#[test]
fn mbbs_end_to_end() {
    run_benchmark("mbbs");
}

#[test]
fn lcs_fails_as_in_the_paper() {
    run_benchmark("lcs");
}

#[test]
fn custom_profile_is_respected() {
    // A program dividing by elements: safe only with a positive profile.
    let program = parse(
        "input a : seq<int>; state s : int = 0;\n\
         for i in 0 .. len(a) { s = s + 100 / a[i]; } return s;",
    )
    .unwrap();
    let profile = InputProfile::default().with_value_range(1, 9);
    let report = Pipeline::new(&program)
        .configure(PipelineConfig::default().with_profile(profile))
        .run()
        .unwrap();
    assert!(report.parallelization.is_divide_and_conquer());
}
