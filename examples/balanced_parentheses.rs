//! The §2.1 motivating example: **balanced parentheses** — a loop nest
//! that is *not* memoryless and whose summarized loop is provably not
//! efficiently liftable to a homomorphism.
//!
//! ```sh
//! cargo run --release --example balanced_parentheses
//! ```
//!
//! The pipeline (i) discovers the `min_offset` inner accumulator
//! (Figure 4's memoryless lift), (ii) rewrites the program into
//! memoryless normal form, (iii) fails join synthesis — correctly — and
//! falls back to the **map-only** parallelization of Prop. 4.3: every
//! line's `(line_offset, min_offset)` is computed in parallel, the outer
//! fold stays sequential.

use parsynt::core::{run_map_only, Outcome, Pipeline, PipelineConfig};
use parsynt::lang::interp::run_program;
use parsynt::lang::pretty::program_to_string;
use parsynt::lang::{parse, Value};
use parsynt::synth::examples::InputProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse(
        "input a : seq<seq<int>>;\n\
         state offset : int = 0;\n\
         state bal : bool = true;\n\
         state cnt : int = 0;\n\
         for i in 0 .. len(a) {\n\
           let lo : int = 0;\n\
           for j in 0 .. len(a[i]) {\n\
             lo = lo + (a[i][j] == 1 ? 1 : 0 - 1);\n\
             if (offset + lo < 0) { bal = false; }\n\
           }\n\
           offset = offset + lo;\n\
           if (bal && lo == 0 && offset == 0) { cnt = cnt + 1; }\n\
         }\n\
         return cnt;",
    )?;

    let profile = InputProfile::default().with_choices(&[-1, 1]);
    println!("running the pipeline on bp (lift + merge synthesis, ~minutes)...");
    let plan = Pipeline::new(&program)
        .configure(PipelineConfig::default().with_profile(profile))
        .run()?
        .parallelization;
    assert!(matches!(plan.outcome, Outcome::MapOnly), "bp is map-only");
    println!(
        "memoryless lift added: {:?} (the paper's min_offset)",
        plan.report.aux_memoryless
    );
    println!("== memoryless normal form (compare Figure 4) ==");
    println!("{}", program_to_string(&plan.program));

    // Execute: "( ( )" / ")" / "( )" — lines 1 and 3 are level.
    let input = Value::seq2_of_ints(&[vec![1, 1, -1], vec![-1], vec![1, -1]]);
    let seq = run_program(&plan.program, std::slice::from_ref(&input))?;
    let par = run_map_only(&plan, &[input], 4)?;
    assert_eq!(
        par.scalar_named(&plan.program, "cnt"),
        seq.scalar_named(&plan.program, "cnt")
    );
    println!(
        "level lines counted (parallel map, 4 threads): {}",
        par.scalar_named(&plan.program, "cnt").unwrap()
    );
    Ok(())
}
