//! The paper's introduction example (Figure 1): **maximum bottom box
//! sum** over a 3-dimensional array.
//!
//! ```sh
//! cargo run --release --example mbbs
//! ```
//!
//! `mbbs` is memoryless but *not* a homomorphism — the introduction
//! proves no join can exist by exhibiting `b' = [-3,3]` vs `[0,3]`. The
//! pipeline discovers the `aux_sum` lifting of Figure 1(b) via
//! normalization (§8) and synthesizes the Figure 1(c) join. This example
//! then races the native divide-and-conquer implementation against the
//! sequential baseline.

use parsynt::core::{proof_obligations, Outcome, Pipeline};
use parsynt::lang::parse;
use parsynt::runtime::RunConfig;
use parsynt::suite::native::workload;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse(
        "input a : seq<seq<seq<int>>>;\n\
         state mbbs : int = 0;\n\
         for i in 0 .. len(a) {\n\
           let plane : int = 0;\n\
           for j in 0 .. len(a[i]) {\n\
             for k in 0 .. len(a[i][j]) { plane = plane + a[i][j][k]; }\n\
           }\n\
           mbbs = max(mbbs + plane, 0);\n\
         }\n\
         return mbbs;",
    )?;

    println!("running the pipeline on mbbs (this synthesizes, ~seconds)...");
    let report = Pipeline::new(&program).run()?;
    let plan = &report.parallelization;
    let Outcome::DivideAndConquer { join, .. } = &plan.outcome else {
        panic!("mbbs lifts to a homomorphism");
    };
    println!(
        "lifted with {} auxiliar{}: {:?}",
        plan.report.aux_count(),
        if plan.report.aux_count() == 1 {
            "y"
        } else {
            "ies"
        },
        plan.report.aux_homomorphism
    );
    println!("== synthesized join (compare Figure 1(c)) ==");
    println!("{}", join.render(&plan.program));

    // Bounded proof of the homomorphism law + Dafny-style obligations.
    let checks = report.check_homomorphism(100)?;
    println!("homomorphism law checked on {checks} random splits ✓");
    println!("{}", proof_obligations(plan));

    // Native performance run.
    let w = workload("mbbs").expect("registered");
    let prepared = (w.prepare)(4_000_000, 99);
    let t0 = Instant::now();
    let seq = prepared.sequential();
    let t_seq = t0.elapsed();
    let cfg = RunConfig::work_stealing(8).with_grain(512);
    let t1 = Instant::now();
    let par = prepared.parallel(cfg);
    let t_par = t1.elapsed();
    assert_eq!(seq, par);
    println!(
        "native 4M elements: sequential {t_seq:?}, 8 threads {t_par:?} \
         (speedup {:.2}x)",
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );
    Ok(())
}
