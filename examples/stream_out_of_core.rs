//! Out-of-core streaming: aggregate a binary file of `i64` records that
//! is paged through a fixed window, never resident in memory at once.
//!
//! ```sh
//! cargo run --release --example stream_out_of_core            # 20M records
//! cargo run --release --example stream_out_of_core -- 80000000 2000000 8
//! #                                        records ──┘  window ──┘   └─ threads
//! ```
//!
//! Streams the file twice through `Executor::stream`: once under plain
//! summation (the `sum2d` aggregate) and once under the Figure-1
//! maximum-bottom-strip pair `(sum, mbs)` whose lifted join is
//! `max(mbs_r, mbs_l + sum_r)` — the synthesized mbbs join, hand-coded
//! as a native task. Prints throughput and per-snapshot latency; the
//! measurements back experiment E10 in `EXPERIMENTS.md`.

#[cfg(unix)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use parsynt::runtime::{DncTask, Executor, PagedFileChunks, RunConfig};
    use std::io::Write;
    use std::path::Path;
    use std::time::{Duration, Instant};

    /// Plain summation: the 1-D essence of the `sum2d` benchmark.
    struct Sum;
    impl DncTask for Sum {
        type Item = i64;
        type Acc = i64;
        fn identity(&self) -> i64 {
            0
        }
        fn work(&self, chunk: &[i64]) -> i64 {
            chunk.iter().sum()
        }
        fn join(&self, l: i64, r: i64) -> i64 {
            l + r
        }
    }

    /// Maximum bottom-strip sum lifted with its auxiliary running sum
    /// (Figure 1 of the paper): acc = (sum, mbs).
    struct Mbs;
    impl DncTask for Mbs {
        type Item = i64;
        type Acc = (i64, i64);
        fn identity(&self) -> (i64, i64) {
            (0, 0)
        }
        fn work(&self, chunk: &[i64]) -> (i64, i64) {
            chunk
                .iter()
                .fold((0, 0), |(sum, mbs), &x| (sum + x, (mbs + x).max(0)))
        }
        fn join(&self, l: (i64, i64), r: (i64, i64)) -> (i64, i64) {
            (l.0 + r.0, r.1.max(l.1 + r.0))
        }
    }

    /// Page the file through one streaming session; report the final
    /// aggregate, throughput, and the worst single-snapshot latency.
    fn stream_file<T: DncTask<Item = i64>>(
        name: &str,
        exec: &Executor,
        task: &T,
        path: &Path,
        window: usize,
    ) -> Result<(), Box<dyn std::error::Error>>
    where
        T::Acc: Clone + std::fmt::Debug,
    {
        let mut session = exec.stream(task);
        let mut snap_worst = Duration::ZERO;
        let t0 = Instant::now();
        for chunk in PagedFileChunks::open(path, window)? {
            session.push_chunk(&chunk?)?;
            let t = Instant::now();
            let _ = session.snapshot();
            snap_worst = snap_worst.max(t.elapsed());
        }
        let out = session.finish();
        println!(
            "  {name}: value {:?}\n  {name}: {:.1}M records/s ({:.0} MB/s), wall {:.2?}, worst snapshot {:.1?}, degraded {}",
            out.value,
            out.elements as f64 / out.elapsed.as_secs_f64() / 1e6,
            out.elements as f64 * 8.0 / out.elapsed.as_secs_f64() / 1e6,
            t0.elapsed(),
            snap_worst,
            out.degraded_chunks,
        );
        Ok(())
    }

    let mut args = std::env::args().skip(1);
    let records: u64 = args.next().map_or(Ok(20_000_000), |s| s.parse())?;
    let window: usize = args.next().map_or(Ok(1_000_000), |s| s.parse())?;
    let threads: usize = args.next().map_or(Ok(4), |s| s.parse())?;

    // Generate the input incrementally — the full dataset exists only on
    // disk, mirroring how the streaming side reads it back.
    let path = std::env::temp_dir().join(format!("parsynt-ooc-{}.bin", std::process::id()));
    let started = Instant::now();
    {
        let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
        let mut x: u64 = 0x243F_6A88_85A3_08D3; // deterministic xorshift
        for _ in 0..records {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.write_all(&(((x >> 1) % 1_000) as i64 - 495).to_le_bytes())?;
        }
        out.flush()?;
    }
    println!(
        "wrote {records} records ({:.0} MB) in {:.2?}; window {window} records ({:.0} MB), {threads} threads",
        (records * 8) as f64 / 1e6,
        started.elapsed(),
        window as f64 * 8.0 / 1e6,
    );

    let exec = Executor::new(RunConfig::work_stealing(threads));
    stream_file("sum (sum2d aggregate)", &exec, &Sum, &path, window)?;
    stream_file("mbs (Figure-1 join)  ", &exec, &Mbs, &path, window)?;

    std::fs::remove_file(&path).ok();
    Ok(())
}

#[cfg(not(unix))]
fn main() {
    eprintln!("PagedFileChunks is Unix-only; nothing to demonstrate here.");
}
