//! Quickstart: parallelize a sequential nested loop end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Takes a 2-D summation loop through the full ParSynt pipeline
//! (Figure 7 of the paper): summarization, join synthesis, then executes
//! the synthesized divide-and-conquer plan on real threads and checks it
//! against the sequential run.

use parsynt::core::{run_divide_and_conquer, Outcome, Pipeline};
use parsynt::lang::interp::run_program;
use parsynt::lang::{parse, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A sequential nested loop in the mini language: the total sum of
    //    a 2-dimensional array.
    let program = parse(
        "input a : seq<seq<int>>;\n\
         state s : int = 0;\n\
         for i in 0 .. len(a) {\n\
           for j in 0 .. len(a[i]) { s = s + a[i][j]; }\n\
         }\n\
         return s;",
    )?;

    // 2. Run the parallelization schema through the observable
    //    pipeline builder.
    let report = Pipeline::new(&program).run()?;
    let plan = &report.parallelization;
    let Outcome::DivideAndConquer { join, .. } = &plan.outcome else {
        panic!("sum is a homomorphism and must parallelize");
    };
    println!("== synthesized join ⊙ ==");
    println!("{}", join.render(&plan.program));
    println!(
        "summarization: {:?}, join synthesis: {:?}, auxiliaries: {}",
        plan.report.summarization_time,
        plan.report.join_time,
        plan.report.aux_count()
    );
    if let Some(total) = report.phase_timings.get("total") {
        println!("total pipeline wall clock: {total:?}");
    }

    // 3. Execute the synthesized plan on worker threads and compare with
    //    the sequential interpreter.
    let rows: Vec<Vec<i64>> = (0..64)
        .map(|i| {
            (0..32)
                .map(|j| ((i * 31 + j * 17) % 23) as i64 - 11)
                .collect()
        })
        .collect();
    let input = Value::seq2_of_ints(&rows);
    let sequential = run_program(&plan.program, std::slice::from_ref(&input))?;
    let parallel = run_divide_and_conquer(plan, &[input], 8)?;
    assert_eq!(parallel, sequential);
    println!(
        "parallel (8 threads) == sequential: s = {}",
        parallel.scalar_named(&plan.program, "s").unwrap()
    );
    Ok(())
}
