//! The §2.2 motivating example: **maximum top-left subarray sum**
//! (mtls) — summarization keeps the loop 2-deep, the lifting needs an
//! *array* of accumulators (`max_rec[]`, Figure 5(c)), and the join is
//! itself a loop (Figure 6).
//!
//! ```sh
//! cargo run --release --example max_top_left_sum
//! ```

use parsynt::core::{run_divide_and_conquer, Outcome, Pipeline};
use parsynt::lang::interp::run_program;
use parsynt::lang::{parse, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse(
        "input a : seq<seq<int>>;\n\
         state rec : seq<int> = zeros(len(a[0]));\n\
         state mtl : int = 0;\n\
         for i in 0 .. len(a) {\n\
           let rpre : int = 0;\n\
           for j in 0 .. len(a[i]) {\n\
             rpre = rpre + a[i][j];\n\
             rec[j] = rec[j] + rpre;\n\
             mtl = max(mtl, rec[j]);\n\
           }\n\
         }\n\
         return mtl;",
    )?;

    println!("running the pipeline on mtls (looped join synthesis, ~minutes)...");
    let plan = Pipeline::new(&program).run()?.parallelization;
    let Outcome::DivideAndConquer { join, .. } = &plan.outcome else {
        panic!("mtls lifts to a homomorphism with an array accumulator");
    };
    assert!(plan.report.looped_join, "the join must loop (Figure 6)");
    println!(
        "array auxiliaries discovered: {:?} (the paper's max_rec[])",
        plan.report.aux_homomorphism
    );
    println!("== synthesized looped join (compare Figure 6) ==");
    println!("{}", join.render(&plan.program));

    // Execute the plan in parallel and cross-check.
    let rows: Vec<Vec<i64>> = (0..40)
        .map(|i| {
            (0..12)
                .map(|j| ((i * 7 + j * 13) % 19) as i64 - 9)
                .collect()
        })
        .collect();
    let input = Value::seq2_of_ints(&rows);
    let seq = run_program(&plan.program, std::slice::from_ref(&input))?;
    for threads in [2, 4, 8] {
        let par = run_divide_and_conquer(&plan, std::slice::from_ref(&input), threads)?;
        assert_eq!(
            par.scalar_named(&plan.program, "mtl"),
            seq.scalar_named(&plan.program, "mtl"),
            "{threads} threads"
        );
    }
    println!(
        "max top-left sum = {} (verified at 2/4/8 threads)",
        seq.scalar_named(&plan.program, "mtl").unwrap()
    );
    Ok(())
}
