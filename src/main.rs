//! The `parsynt` command-line tool: parallelize sequential nested loops
//! from the command line.
//!
//! ```text
//! parsynt parallelize <file> [--values lo..hi | --brackets] [--seed N]
//!     Run the Figure-7 schema on a mini-language program; print the
//!     report, the transformed (lifted) program, the synthesized join
//!     and the proof obligations.
//!
//! parsynt run <file> --threads N [--rows R --cols C] [--values lo..hi]
//!     Parallelize, then execute the synthesized plan on N threads over
//!     a random input and cross-check against the sequential run.
//!
//! parsynt check <file> [--tests N]
//!     Parallelize, then property-check the homomorphism law
//!     h(x • y) = h(x) ⊙ h(y) on N random splits.
//!
//! parsynt bench-list
//!     List the built-in evaluation benchmarks (Table 1 of the paper).
//!
//! parsynt bench <id>
//!     Run the pipeline on a built-in benchmark by id.
//! ```

use parsynt::core::schema::{parallelize_with, Outcome, Parallelization};
use parsynt::core::{
    check_homomorphism_law, proof_obligations, run_divide_and_conquer, run_map_only,
};
use parsynt::lang::interp::run_program;
use parsynt::lang::pretty::program_to_string;
use parsynt::lang::{parse, Program, Value};
use parsynt::suite::{all_benchmarks, benchmark};
use parsynt::synth::examples::InputProfile;
use parsynt::synth::report::SynthConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "parallelize" => cmd_parallelize(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "bench-list" => cmd_bench_list(),
        "bench" => cmd_bench(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "parsynt — modular divide-and-conquer parallelization of nested loops

USAGE:
  parsynt parallelize <file> [--values lo..hi | --brackets]
                             [--pair-width W] [--seed N]
  parsynt run <file> --threads N [--rows R] [--cols C] [--values lo..hi]
  parsynt check <file> [--tests N] [--values lo..hi | --brackets]
                       [--pair-width W]
  parsynt bench-list
  parsynt bench <id>";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn load_program(args: &[String]) -> Result<Program, String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing program file")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn profile_from(args: &[String]) -> Result<InputProfile, String> {
    let mut profile = InputProfile::default();
    if has_flag(args, "--brackets") {
        profile = profile.with_choices(&[-1, 1]);
    } else if let Some(range) = flag(args, "--values") {
        let (lo, hi) = range.split_once("..").ok_or("--values expects lo..hi")?;
        profile = profile.with_value_range(
            lo.parse().map_err(|_| "bad --values lower bound")?,
            hi.parse().map_err(|_| "bad --values upper bound")?,
        );
    }
    // Fixed row width for programs that index rows at constant positions
    // (e.g. range pairs reading a[i][0] and a[i][1]).
    if let Some(cols) = flag(args, "--pair-width") {
        let w: usize = cols.parse().map_err(|_| "bad --pair-width")?;
        profile = profile.with_cols(w.max(1), w.max(1));
    }
    Ok(profile)
}

fn config_from(args: &[String]) -> SynthConfig {
    let mut cfg = SynthConfig::default();
    if let Some(seed) = flag(args, "--seed").and_then(|s| s.parse().ok()) {
        cfg = cfg.with_seed(seed);
    }
    cfg
}

fn pipeline(args: &[String]) -> Result<(Program, Parallelization), String> {
    let program = load_program(args)?;
    let profile = profile_from(args)?;
    let cfg = config_from(args);
    let plan = parallelize_with(&program, &profile, &cfg).map_err(|e| e.to_string())?;
    Ok((program, plan))
}

fn print_plan(plan: &Parallelization) {
    let r = &plan.report;
    println!(
        "loop depth n = {}, summarized depth k = {}",
        r.loop_depth, r.summarized_depth
    );
    println!(
        "summarization: {:.2?}   lifting: {:.2?}   join synthesis: {:.2?}",
        r.summarization_time, r.lift_time, r.join_time
    );
    if !r.aux_memoryless.is_empty() {
        println!("memoryless-lift auxiliaries: {:?}", r.aux_memoryless);
    }
    if !r.aux_homomorphism.is_empty() {
        println!("homomorphism-lift auxiliaries: {:?}", r.aux_homomorphism);
    }
    match &plan.outcome {
        Outcome::DivideAndConquer { join, .. } => {
            println!("\noutcome: divide-and-conquer");
            println!("\n== transformed (lifted) program ==");
            println!("{}", program_to_string(&plan.program));
            println!("== synthesized join ⊙ ==");
            println!("{}", join.render(&plan.program));
        }
        Outcome::MapOnly => {
            println!(
                "\noutcome: map-only (the paper's †) — inner nest parallel, outer fold sequential"
            );
            println!("\n== memoryless normal form ==");
            println!("{}", program_to_string(&plan.program));
        }
        Outcome::Unparallelizable { reason } => {
            println!("\noutcome: not parallelizable (✗) — {reason}");
        }
    }
}

fn cmd_parallelize(args: &[String]) -> Result<(), String> {
    let (_, plan) = pipeline(args)?;
    print_plan(&plan);
    if !plan.is_unparallelizable() {
        println!("\n{}", proof_obligations(&plan));
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let threads: usize = flag(args, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let rows: usize = flag(args, "--rows")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let cols: usize = flag(args, "--cols")
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let (_, plan) = pipeline(args)?;
    print_plan(&plan);

    // Generate a random input of the program's main-input type.
    let profile = profile_from(args)?
        .with_rows(rows, rows)
        .with_cols(cols, cols);
    let f =
        parsynt::lang::functional::RightwardFn::new(&plan.program).map_err(|e| e.to_string())?;
    let mut rng = SmallRng::seed_from_u64(42);
    let inputs: Vec<Value> = parsynt::synth::examples::random_inputs(&f, &profile, &mut rng);

    let sequential = run_program(&plan.program, &inputs).map_err(|e| e.to_string())?;
    let parallel = match &plan.outcome {
        Outcome::DivideAndConquer { .. } => {
            run_divide_and_conquer(&plan, &inputs, threads).map_err(|e| e.to_string())?
        }
        Outcome::MapOnly => run_map_only(&plan, &inputs, threads).map_err(|e| e.to_string())?,
        Outcome::Unparallelizable { reason } => return Err(format!("nothing to run: {reason}")),
    };
    if parallel != sequential {
        return Err("parallel result differs from sequential!".to_owned());
    }
    println!("\nexecuted on {threads} threads over a random {rows}-row input: results agree ✓");
    for (sym, value) in sequential.entries() {
        if plan.program.returns.contains(sym) {
            println!("  {} = {}", plan.program.name(*sym), value);
        }
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let tests: usize = flag(args, "--tests")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let (_, plan) = pipeline(args)?;
    if !plan.is_divide_and_conquer() {
        return Err("no join to check (not a divide-and-conquer plan)".to_owned());
    }
    let profile = profile_from(args)?;
    let checks =
        check_homomorphism_law(&plan, &profile, tests, 0xC0DE).map_err(|e| e.to_string())?;
    println!("homomorphism law h(x • y) = h(x) ⊙ h(y) held on {checks} random splits ✓");
    Ok(())
}

fn cmd_bench_list() -> Result<(), String> {
    println!(
        "{:<22} {:<20} {:>5} {}",
        "id", "paper name", "dim", "expected"
    );
    for b in all_benchmarks() {
        println!(
            "{:<22} {:<20} {:>5} {:?}",
            b.id,
            b.display,
            format!("{:?}", b.dim),
            b.expected
        );
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let id = args.first().ok_or("missing benchmark id")?;
    let b = benchmark(id).ok_or_else(|| format!("unknown benchmark `{id}`"))?;
    let program = parse(b.source).map_err(|e| e.to_string())?;
    let plan = parallelize_with(&program, &b.profile, &SynthConfig::default())
        .map_err(|e| e.to_string())?;
    println!("benchmark: {} ({})", b.id, b.display);
    print_plan(&plan);
    Ok(())
}
