//! The `parsynt` command-line tool: parallelize sequential nested loops
//! from the command line.
//!
//! ```text
//! parsynt parallelize <file> [--values lo..hi | --brackets] [--seed N]
//!     Run the Figure-7 schema on a mini-language program; print the
//!     report, the transformed (lifted) program, the synthesized join
//!     and the proof obligations.
//!
//! parsynt run <file> --threads N [--rows R --cols C] [--values lo..hi]
//!     Parallelize, then execute the synthesized plan on N threads over
//!     a random input and cross-check against the sequential run.
//!
//! parsynt check <file> [--tests N]
//!     Parallelize, then property-check the homomorphism law
//!     h(x • y) = h(x) ⊙ h(y) on N random splits.
//!
//! parsynt bench-list
//!     List the built-in evaluation benchmarks (Table 1 of the paper).
//!
//! parsynt bench <id> [--threads N] [--grain G]
//!     Run the pipeline on a built-in benchmark by id, then execute its
//!     native workload on the work-stealing runtime.
//! ```
//!
//! Every pipeline-running command also accepts `--json` (emit the
//! machine-readable `PipelineReport` on stdout instead of prose),
//! `--trace <file>` (stream the structured event trace as JSON lines)
//! and `--synth-threads N` (parallel candidate screening inside the
//! synthesis engine; deterministic, 1 = fully sequential).

use parsynt::core::{
    proof_obligations, run_divide_and_conquer_checked, run_map_only_checked, Outcome,
    Parallelization, Pipeline, PipelineConfig, PipelineReport, SolutionCache,
};
use parsynt::lang::interp::run_program;
use parsynt::lang::pretty::program_to_string;
use parsynt::lang::{parse, Program, Value};
use parsynt::suite::{all_benchmarks, benchmark, workload};
use parsynt::synth::examples::InputProfile;
use parsynt::synth::report::SynthConfig;
use parsynt::trace::sinks::WriterSink;
use parsynt::trace::{set_ambient, TraceSink, Tracer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;
use std::sync::Arc;

/// Everything that can go wrong on the command line, with one exit code
/// per kind (`sysexits`-flavoured).
#[derive(Debug)]
enum CliError {
    /// Bad invocation: unknown command/flag, missing argument.
    Usage(String),
    /// A file could not be read or created.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The input program did not parse or type-check.
    Parse(String),
    /// The schema itself failed (interpreter error during synthesis).
    Synthesis(String),
    /// Executing or checking a synthesized plan failed.
    Exec(String),
    /// The synthesis search hit its `--timeout-ms` deadline.
    DeadlineExceeded(String),
    /// A worker panicked during execution and the run degraded to the
    /// sequential fallback (results were still produced and verified).
    Degraded(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Parse(msg) => write!(f, "{msg}"),
            CliError::Synthesis(msg) => write!(f, "synthesis failed: {msg}"),
            CliError::Exec(msg) => write!(f, "{msg}"),
            CliError::DeadlineExceeded(msg) => write!(f, "synthesis deadline exceeded: {msg}"),
            CliError::Degraded(msg) => write!(f, "execution degraded: {msg}"),
        }
    }
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Parse(_) => 4,
            CliError::Synthesis(_) => 5,
            CliError::Exec(_) => 6,
            CliError::DeadlineExceeded(_) => 7,
            CliError::Degraded(_) => 8,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "parallelize" => Cli::parse(&args[1..]).and_then(|cli| cmd_parallelize(&cli)),
        "run" => Cli::parse(&args[1..]).and_then(|cli| cmd_run(&cli)),
        "check" => Cli::parse(&args[1..]).and_then(|cli| cmd_check(&cli)),
        "bench-list" => cmd_bench_list(),
        "bench" => Cli::parse(&args[1..]).and_then(|cli| cmd_bench(&cli)),
        "serve" => Cli::parse(&args[1..]).and_then(|cli| cmd_serve(&cli)),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(err.exit_code())
        }
    }
}

const USAGE: &str = "parsynt — modular divide-and-conquer parallelization of nested loops

USAGE:
  parsynt parallelize <file> [--values lo..hi | --brackets]
                             [--pair-width W] [--seed N]
  parsynt run <file> --threads N [--rows R] [--cols C] [--values lo..hi]
              [--stream] [--chunk-rows R] [--snapshot-every K]
  parsynt check <file> [--tests N] [--values lo..hi | --brackets]
                       [--pair-width W]
  parsynt bench-list
  parsynt bench <id> [--threads N] [--grain G]
  parsynt serve [--addr HOST:PORT] [--workers N] [--queue N]
                [--cache-dir DIR] [--trace-dir DIR] [--timeout-ms T]

Observability (parallelize / run / check / bench):
  --json          print the machine-readable PipelineReport on stdout
  --trace <file>  stream the structured event trace as JSON lines

Caching (parallelize / run / check / bench / serve):
  --cache-dir DIR  persist synthesized solutions, keyed by the
                   normal-form fingerprint of the input program;
                   repeat invocations re-serve the plan without
                   re-running synthesis

Service (serve):
  --addr HOST:PORT  bind address (default 127.0.0.1:7341)
  --workers N       synthesis worker threads (default 4)
  --queue N         bounded request queue; overflow answers 503
  --trace-dir DIR   per-request JSONL traces as DIR/<request-id>.jsonl

Streaming (run):
  --stream            execute as an online aggregation: consume the
                      input in chunks, fold each into the running state
                      with the synthesized join, and print progressive
                      partial-prefix snapshots; the final state is
                      byte-identical to the batch run
  --chunk-rows R      rows of the outer dimension per stream chunk
                      (default 8)
  --snapshot-every K  print a snapshot every K chunks (default 1;
                      0 = only the final result)

Synthesis (parallelize / run / check / bench):
  --synth-threads N  screen join/merge candidates on N worker threads
                     (deterministic; 1 = sequential CEGIS, the default)

Robustness (parallelize / run / check / bench):
  --timeout-ms T  bound the synthesis search to a wall-clock deadline;
                  when it expires the loop is reported unparallelizable
                  with a `deadline exceeded` reason and exit code 7

Exit codes:
  0 success                2 usage      3 io      4 parse
  5 synthesis failed       6 execution/check failed
  7 synthesis deadline exceeded (--timeout-ms)
  8 execution degraded: a worker panicked and the run fell back to the
    sequential interpreter (results were still produced and verified)";

/// Flags that consume a value.
const VALUE_FLAGS: &[&str] = &[
    "--values",
    "--pair-width",
    "--seed",
    "--threads",
    "--rows",
    "--cols",
    "--tests",
    "--trace",
    "--grain",
    "--synth-threads",
    "--timeout-ms",
    "--cache-dir",
    "--addr",
    "--workers",
    "--queue",
    "--trace-dir",
    "--chunk-rows",
    "--snapshot-every",
];
/// Boolean switches.
const SWITCHES: &[&str] = &["--brackets", "--json", "--stream"];

/// Parsed command arguments: positionals, `--flag value` pairs, and
/// switches — rejecting anything unknown.
struct Cli {
    positionals: Vec<String>,
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Cli {
    fn parse(args: &[String]) -> Result<Cli, CliError> {
        let mut cli = Cli {
            positionals: Vec::new(),
            values: BTreeMap::new(),
            switches: Vec::new(),
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if VALUE_FLAGS.contains(&arg.as_str()) {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("{arg} expects a value\n{USAGE}")))?;
                cli.values.insert(arg.clone(), value.clone());
            } else if SWITCHES.contains(&arg.as_str()) {
                cli.switches.push(arg.clone());
            } else if arg.starts_with("--") {
                return Err(CliError::Usage(format!("unknown flag `{arg}`\n{USAGE}")));
            } else {
                cli.positionals.push(arg.clone());
            }
        }
        Ok(cli)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.value(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("bad value `{raw}` for {name}"))),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn load_program(cli: &Cli) -> Result<Program, CliError> {
    let path = cli
        .positionals
        .first()
        .ok_or_else(|| CliError::Usage(format!("missing program file\n{USAGE}")))?;
    let src = std::fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.clone(),
        source,
    })?;
    parse(&src).map_err(|e| CliError::Parse(format!("{path}: {e}")))
}

fn profile_from(cli: &Cli) -> Result<InputProfile, CliError> {
    let mut profile = InputProfile::default();
    if cli.switch("--brackets") {
        profile = profile.with_choices(&[-1, 1]);
    } else if let Some(range) = cli.value("--values") {
        let (lo, hi) = range
            .split_once("..")
            .ok_or_else(|| CliError::Usage("--values expects lo..hi".to_owned()))?;
        profile = profile.with_value_range(
            lo.parse()
                .map_err(|_| CliError::Usage("bad --values lower bound".to_owned()))?,
            hi.parse()
                .map_err(|_| CliError::Usage("bad --values upper bound".to_owned()))?,
        );
    }
    // Fixed row width for programs that index rows at constant positions
    // (e.g. range pairs reading a[i][0] and a[i][1]).
    if let Some(w) = cli.parsed::<usize>("--pair-width")? {
        profile = profile.with_cols(w.max(1), w.max(1));
    }
    Ok(profile)
}

fn config_from(cli: &Cli) -> Result<SynthConfig, CliError> {
    let mut cfg = SynthConfig::default();
    if let Some(seed) = cli.parsed::<u64>("--seed")? {
        cfg = cfg.with_seed(seed);
    }
    if let Some(threads) = cli.parsed::<usize>("--synth-threads")? {
        cfg = cfg.with_threads(threads);
    }
    if let Some(ms) = cli.parsed::<u64>("--timeout-ms")? {
        cfg = cfg.with_timeout_ms(ms);
    }
    Ok(cfg)
}

/// Map a deadline-cut report onto its dedicated exit code; commands
/// call this after printing the (partial) report.
fn deadline_check(report: &PipelineReport) -> Result<(), CliError> {
    if report.report().deadline_exceeded {
        let reason = match &report.parallelization.outcome {
            Outcome::Unparallelizable { reason } => reason.clone(),
            _ => "deadline exceeded".to_owned(),
        };
        return Err(CliError::DeadlineExceeded(reason));
    }
    Ok(())
}

/// Open the `--trace` sink, if requested.
fn trace_sink(cli: &Cli) -> Result<Option<Arc<WriterSink<BufWriter<File>>>>, CliError> {
    match cli.value("--trace") {
        None => Ok(None),
        Some(path) => Ok(Some(Arc::new(WriterSink::to_file(path).map_err(
            |source| CliError::Io {
                path: path.to_owned(),
                source,
            },
        )?))),
    }
}

/// Open the `--cache-dir` persistent solution cache, if requested.
fn cache_from(cli: &Cli) -> Result<Option<Arc<SolutionCache>>, CliError> {
    match cli.value("--cache-dir") {
        None => Ok(None),
        Some(dir) => SolutionCache::persistent(
            std::path::Path::new(dir),
            parsynt::core::cache::DEFAULT_CAPACITY,
        )
        .map(|cache| Some(Arc::new(cache)))
        .map_err(|source| CliError::Io {
            path: dir.to_owned(),
            source,
        }),
    }
}

/// Run the observable pipeline, wiring in the `--trace` sink and the
/// `--cache-dir` solution cache.
fn run_pipeline(
    program: &Program,
    profile: InputProfile,
    cfg: SynthConfig,
    run: Option<parsynt::runtime::RunConfig>,
    sink: Option<&Arc<WriterSink<BufWriter<File>>>>,
    cache: Option<Arc<SolutionCache>>,
) -> Result<PipelineReport, CliError> {
    let mut pipeline_cfg = PipelineConfig::default()
        .with_profile(profile)
        .with_synth(cfg);
    if let Some(run) = run {
        pipeline_cfg = pipeline_cfg.with_run(run);
    }
    let mut pipeline = Pipeline::new(program).configure(pipeline_cfg);
    if let Some(sink) = sink {
        pipeline = pipeline.sink_arc(Arc::clone(sink) as Arc<dyn TraceSink>);
    }
    if let Some(cache) = cache {
        pipeline = pipeline.cache(cache);
    }
    pipeline
        .run()
        .map_err(|e| CliError::Synthesis(e.to_string()))
}

fn print_plan(plan: &Parallelization) {
    let r = &plan.report;
    println!(
        "loop depth n = {}, summarized depth k = {}",
        r.loop_depth, r.summarized_depth
    );
    println!(
        "summarization: {:.2?}   lifting: {:.2?}   join synthesis: {:.2?}",
        r.summarization_time, r.lift_time, r.join_time
    );
    if !r.aux_memoryless.is_empty() {
        println!("memoryless-lift auxiliaries: {:?}", r.aux_memoryless);
    }
    if !r.aux_homomorphism.is_empty() {
        println!("homomorphism-lift auxiliaries: {:?}", r.aux_homomorphism);
    }
    match &plan.outcome {
        Outcome::DivideAndConquer { join, .. } => {
            println!("\noutcome: divide-and-conquer");
            println!("\n== transformed (lifted) program ==");
            println!("{}", program_to_string(&plan.program));
            println!("== synthesized join ⊙ ==");
            println!("{}", join.render(&plan.program));
        }
        Outcome::MapOnly => {
            println!(
                "\noutcome: map-only (the paper's †) — inner nest parallel, outer fold sequential"
            );
            println!("\n== memoryless normal form ==");
            println!("{}", program_to_string(&plan.program));
        }
        Outcome::Unparallelizable { reason } => {
            println!("\noutcome: not parallelizable (✗) — {reason}");
        }
    }
}

fn cmd_parallelize(cli: &Cli) -> Result<(), CliError> {
    let program = load_program(cli)?;
    let sink = trace_sink(cli)?;
    let report = run_pipeline(
        &program,
        profile_from(cli)?,
        config_from(cli)?,
        None,
        sink.as_ref(),
        cache_from(cli)?,
    )?;
    if cli.switch("--json") {
        println!("{}", report.to_json_pretty());
        return deadline_check(&report);
    }
    print_plan(&report.parallelization);
    deadline_check(&report)?;
    if !report.parallelization.is_unparallelizable() {
        println!("\n{}", proof_obligations(&report.parallelization));
    }
    Ok(())
}

fn cmd_run(cli: &Cli) -> Result<(), CliError> {
    let threads = cli.parsed::<usize>("--threads")?.unwrap_or(4);
    let rows = cli.parsed::<usize>("--rows")?.unwrap_or(64);
    let cols = cli.parsed::<usize>("--cols")?.unwrap_or(16);
    let program = load_program(cli)?;
    let sink = trace_sink(cli)?;
    let mut report = run_pipeline(
        &program,
        profile_from(cli)?,
        config_from(cli)?,
        Some(parsynt::runtime::RunConfig::default().with_threads(threads)),
        sink.as_ref(),
        cache_from(cli)?,
    )?;
    let json = cli.switch("--json");
    let plan = &report.parallelization;
    if !json {
        print_plan(plan);
    }
    deadline_check(&report)?;

    // Generate a random input of the program's main-input type.
    let profile = profile_from(cli)?
        .with_rows(rows, rows)
        .with_cols(cols, cols);
    let f = parsynt::lang::functional::RightwardFn::new(&plan.program)
        .map_err(|e| CliError::Exec(e.to_string()))?;
    let mut rng = SmallRng::seed_from_u64(42);
    let inputs: Vec<Value> = parsynt::synth::examples::random_inputs(&f, &profile, &mut rng);

    // Execute under the same trace sink so executor events land in the
    // same JSONL stream as the synthesis events.
    let _guard = set_ambient(match &sink {
        Some(s) => Tracer::new(Arc::clone(s) as Arc<dyn TraceSink>),
        None => Tracer::disabled(),
    });
    let sequential =
        run_program(&plan.program, &inputs).map_err(|e| CliError::Exec(e.to_string()))?;

    if cli.switch("--stream") {
        return stream_run(cli, &mut report, &inputs, &sequential, threads, json);
    }

    let exec = match &plan.outcome {
        Outcome::DivideAndConquer { .. } => run_divide_and_conquer_checked(plan, &inputs, threads)
            .map_err(|e| CliError::Exec(e.to_string()))?,
        Outcome::MapOnly => run_map_only_checked(plan, &inputs, threads)
            .map_err(|e| CliError::Exec(e.to_string()))?,
        Outcome::Unparallelizable { reason } => {
            return Err(CliError::Exec(format!("nothing to run: {reason}")))
        }
    };
    if exec.state != sequential {
        return Err(CliError::Exec(
            "parallel result differs from sequential!".to_owned(),
        ));
    }
    if json {
        println!("{}", report.to_json_pretty());
    } else {
        println!("\nexecuted on {threads} threads over a random {rows}-row input: results agree ✓");
        for (sym, value) in sequential.entries() {
            if plan.program.returns.contains(sym) {
                println!("  {} = {}", plan.program.name(*sym), value);
            }
        }
    }
    if exec.degraded {
        return Err(CliError::Degraded(
            "a worker panicked; results recovered via the sequential fallback".to_owned(),
        ));
    }
    Ok(())
}

/// The `run --stream` mode: consume the generated input in
/// `--chunk-rows` chunks as an online aggregation, printing progressive
/// partial-prefix snapshots, then cross-check the end-of-input state
/// against the sequential run.
fn stream_run(
    cli: &Cli,
    report: &mut PipelineReport,
    inputs: &[Value],
    sequential: &parsynt::lang::interp::StateVec,
    threads: usize,
    json: bool,
) -> Result<(), CliError> {
    let chunk_rows = cli.parsed::<usize>("--chunk-rows")?.unwrap_or(8).max(1);
    let snapshot_every = cli.parsed::<usize>("--snapshot-every")?.unwrap_or(1);
    // The snapshot callback borrows the program while `report` is
    // mutably borrowed by the streaming run; clone what printing needs.
    let program = report.parallelization.program.clone();
    let streamed = report
        .execute_stream_with(inputs, chunk_rows, snapshot_every, |snap| {
            if json {
                return;
            }
            let values: Vec<String> = snap
                .state
                .entries()
                .iter()
                .filter(|(sym, _)| program.returns.contains(sym))
                .map(|(sym, value)| format!("{} = {}", program.name(*sym), value))
                .collect();
            println!(
                "  [stream] {:>6} rows in {:>3} chunks  {:>10.0} rows/s  {}",
                snap.elements,
                snap.chunks,
                snap.elements_per_sec(),
                values.join("  ")
            );
        })
        .map_err(|e| CliError::Exec(e.to_string()))?;
    if streamed != *sequential {
        return Err(CliError::Exec(
            "streamed result differs from sequential!".to_owned(),
        ));
    }
    let block = report
        .stream_report()
        .expect("streaming run records its block")
        .clone();
    if json {
        println!("{}", report.to_json_pretty());
    } else {
        println!(
            "\nstreamed {} rows as {} chunks of ≤{chunk_rows} on {threads} threads \
             ({} snapshots): end-of-input state matches the batch run ✓",
            block.elements, block.chunks, block.snapshots
        );
        for (sym, value) in streamed.entries() {
            if program.returns.contains(sym) {
                println!("  {} = {}", program.name(*sym), value);
            }
        }
    }
    if block.degraded_chunks > 0 {
        return Err(CliError::Degraded(format!(
            "{} stream chunk(s) degraded to a sequential re-run",
            block.degraded_chunks
        )));
    }
    Ok(())
}

fn cmd_check(cli: &Cli) -> Result<(), CliError> {
    let tests = cli.parsed::<usize>("--tests")?.unwrap_or(200);
    let program = load_program(cli)?;
    let sink = trace_sink(cli)?;
    let report = run_pipeline(
        &program,
        profile_from(cli)?,
        config_from(cli)?,
        None,
        sink.as_ref(),
        cache_from(cli)?,
    )?;
    deadline_check(&report)?;
    if !report.parallelization.is_divide_and_conquer() {
        return Err(CliError::Exec(
            "no join to check (not a divide-and-conquer plan)".to_owned(),
        ));
    }
    let _guard = set_ambient(match &sink {
        Some(s) => Tracer::new(Arc::clone(s) as Arc<dyn TraceSink>),
        None => Tracer::disabled(),
    });
    let checks = report
        .check_homomorphism(tests)
        .map_err(|e| CliError::Exec(e.to_string()))?;
    if cli.switch("--json") {
        println!("{}", report.to_json_pretty());
        return Ok(());
    }
    println!("homomorphism law h(x • y) = h(x) ⊙ h(y) held on {checks} random splits ✓");
    Ok(())
}

fn cmd_serve(cli: &Cli) -> Result<(), CliError> {
    let mut config = parsynt::serve::ServeConfig::default();
    if let Some(addr) = cli.value("--addr") {
        config.addr = addr.to_owned();
    }
    if let Some(workers) = cli.parsed::<usize>("--workers")? {
        config.workers = workers;
    }
    if let Some(depth) = cli.parsed::<usize>("--queue")? {
        config.queue_depth = depth;
    }
    config.cache_dir = cli.value("--cache-dir").map(Into::into);
    config.trace_dir = cli.value("--trace-dir").map(Into::into);
    config.default_timeout_ms = cli.parsed::<u64>("--timeout-ms")?;

    let addr = config.addr.clone();
    let server = parsynt::serve::Server::bind(config)
        .map_err(|source| CliError::Io { path: addr, source })?;
    println!("parsynt-serve listening on http://{}", server.local_addr());
    println!("  POST /parallelize   GET /healthz   GET /stats");
    server.run().map_err(|source| CliError::Io {
        path: "serve".to_owned(),
        source,
    })
}

fn cmd_bench_list() -> Result<(), CliError> {
    println!("{:<22} {:<20} {:>5} expected", "id", "paper name", "dim");
    for b in all_benchmarks() {
        println!(
            "{:<22} {:<20} {:>5} {:?}",
            b.id,
            b.display,
            format!("{:?}", b.dim),
            b.expected
        );
    }
    Ok(())
}

fn cmd_bench(cli: &Cli) -> Result<(), CliError> {
    let id = cli
        .positionals
        .first()
        .ok_or_else(|| CliError::Usage("missing benchmark id".to_owned()))?;
    let b = benchmark(id).ok_or_else(|| CliError::Usage(format!("unknown benchmark `{id}`")))?;
    let program = parse(b.source).map_err(|e| CliError::Parse(e.to_string()))?;
    let sink = trace_sink(cli)?;
    let report = run_pipeline(
        &program,
        b.profile.clone(),
        config_from(cli)?,
        None,
        sink.as_ref(),
        cache_from(cli)?,
    )?;
    let json = cli.switch("--json");
    if !json {
        println!("benchmark: {} ({})", b.id, b.display);
        print_plan(&report.parallelization);
    }
    if report.report().deadline_exceeded {
        if json {
            println!("{}", report.to_json_pretty());
        }
        return deadline_check(&report);
    }

    // Execute the native workload (when one is registered) on the
    // work-stealing runtime, under the same trace sink, so the JSONL
    // stream carries executor events next to the synthesis events.
    if !report.parallelization.is_unparallelizable() {
        if let Some(w) = workload(id) {
            let threads = cli.parsed::<usize>("--threads")?.unwrap_or(4).max(2);
            let total = 200_000;
            let grain = cli.parsed::<usize>("--grain")?.unwrap_or(1_000);
            let prepared = (w.prepare)(total, 7);
            let cfg = parsynt::runtime::RunConfig::default()
                .with_threads(threads)
                .with_grain(grain);
            let _guard = set_ambient(match &sink {
                Some(s) => Tracer::new(Arc::clone(s) as Arc<dyn TraceSink>),
                None => Tracer::disabled(),
            });
            let seq = prepared.sequential();
            let par = prepared.parallel(cfg);
            if par != seq {
                return Err(CliError::Exec(format!(
                    "native workload `{id}`: parallel digest differs from sequential"
                )));
            }
            if !json {
                println!(
                    "\nnative workload: {} outer elements on {threads} threads \
                     (grain {grain}): digests agree ✓",
                    prepared.outer_len()
                );
            }
        }
    }
    if json {
        println!("{}", report.to_json_pretty());
    }
    Ok(())
}
