//! # parsynt
//!
//! A from-scratch Rust reproduction of **ParSynt** — the system of
//! *Modular Divide-and-Conquer Parallelization of Nested Loops*
//! (Farzan & Nicolet, PLDI 2019).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`lang`] — the mini imperative input language (parser, checker,
//!   interpreter, functional form).
//! * [`rewrite`] — the term-rewriting engine behind automatic lifting.
//! * [`synth`] — syntax-guided synthesis of merge (`⊚`) and join (`⊙`)
//!   operators with bounded verification.
//! * [`lift`] — memoryless and homomorphism lifting.
//! * [`core`] — the Figure-7 parallelization schema tying it together.
//! * [`runtime`] — a divide-and-conquer parallel execution runtime.
//! * [`suite`] — the 27 evaluation benchmarks of Table 1 / Figure 9.
//!
//! # Quickstart
//!
//! ```
//! use parsynt::lang::parse;
//! use parsynt::core::parallelize;
//!
//! let program = parse(
//!     "input a : seq<seq<int>>; state s : int = 0;\n\
//!      for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
//! ).unwrap();
//! let result = parallelize(&program).unwrap();
//! assert!(result.is_divide_and_conquer());
//! ```

pub use parsynt_core as core;
pub use parsynt_lang as lang;
pub use parsynt_lift as lift;
pub use parsynt_rewrite as rewrite;
pub use parsynt_runtime as runtime;
pub use parsynt_suite as suite;
pub use parsynt_synth as synth;
