//! # parsynt
//!
//! A from-scratch Rust reproduction of **ParSynt** — the system of
//! *Modular Divide-and-Conquer Parallelization of Nested Loops*
//! (Farzan & Nicolet, PLDI 2019).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`lang`] — the mini imperative input language (parser, checker,
//!   interpreter, functional form).
//! * [`trace`] — the structured-event observability layer every stage
//!   reports into ([`trace::TraceSink`], spans, counters, JSONL sinks).
//! * [`rewrite`] — the term-rewriting engine behind automatic lifting.
//! * [`synth`] — syntax-guided synthesis of merge (`⊚`) and join (`⊙`)
//!   operators with bounded verification.
//! * [`lift`] — memoryless and homomorphism lifting.
//! * [`core`] — the Figure-7 parallelization schema tying it together,
//!   exposed through the [`core::Pipeline`] builder.
//! * [`runtime`] — a divide-and-conquer parallel execution runtime.
//! * [`suite`] — the 27 evaluation benchmarks of Table 1 / Figure 9.
//!
//! # Quickstart
//!
//! ```
//! use parsynt::lang::parse;
//! use parsynt::core::Pipeline;
//!
//! let program = parse(
//!     "input a : seq<seq<int>>; state s : int = 0;\n\
//!      for i in 0 .. len(a) { for j in 0 .. len(a[i]) { s = s + a[i][j]; } }",
//! ).unwrap();
//! let report = Pipeline::new(&program).run().unwrap();
//! assert!(report.parallelization.is_divide_and_conquer());
//! // Every run is observable: per-phase timings and event counters.
//! assert!(report.phase_timings.contains_key("synthesize"));
//! ```
//!
//! To watch the run happen, hand the pipeline a sink:
//!
//! ```no_run
//! # let program = parsynt::lang::parse("input a : seq<int>; state s : int = 0;\n\
//! #     for i in 0 .. len(a) { s = s + a[i]; }").unwrap();
//! use parsynt::core::Pipeline;
//! use parsynt::trace::sinks::WriterSink;
//!
//! let sink = WriterSink::to_file("trace.jsonl").unwrap();
//! let report = Pipeline::new(&program).sink(sink).run().unwrap();
//! println!("{}", report.to_json_pretty());
//! ```
//!
//! # Migrating from 0.1
//!
//! The free functions are deprecated shims (now reachable only through
//! their modules, e.g. `core::schema::parallelize`); each maps onto the
//! builder:
//!
//! | 0.1 | 0.2 |
//! |-----|-----|
//! | `parallelize(&p)?` | `Pipeline::new(&p).run()?.parallelization` |
//! | `parallelize_with(&p, &profile, &cfg)?` | `Pipeline::new(&p).configure(PipelineConfig::default().with_profile(profile).with_synth(cfg)).run()?.parallelization` |
//! | `check_homomorphism_law(&plan, &profile, n, seed)?` | `report.check_homomorphism(n)?` |
//! | ad-hoc knobs spread over call sites | one [`PipelineConfig`], `Pipeline::new(&p).configure(cfg)` |
//!
//! The 0.2 per-part builder setters (`Pipeline::profile`,
//! `Pipeline::config`, `Pipeline::budget`) are deprecated in 0.3: the
//! input profile and search budget moved into [`PipelineConfig`]
//! (`with_profile` / `with_budget`), making
//! `Pipeline::new(&p).configure(cfg)` the single configuration entry
//! point.
//!
//! [`PipelineConfig`] is the whole configuration surface: what to
//! synthesize with ([`SynthConfig`], including `with_synth_threads`
//! for deterministic parallel candidate screening), how
//! [`core::PipelineReport::execute`] runs the result ([`RunConfig`]),
//! what to trace ([`TraceConfig`]), the input profile for bounded
//! verification, and an optional search budget.

pub use parsynt_core as core;
pub use parsynt_lang as lang;
pub use parsynt_lift as lift;
pub use parsynt_rewrite as rewrite;
pub use parsynt_runtime as runtime;
pub use parsynt_serve as serve;
pub use parsynt_suite as suite;
pub use parsynt_synth as synth;
pub use parsynt_trace as trace;

pub use parsynt_core::{Pipeline, PipelineConfig, PipelineReport, RunConfig, TraceConfig};
pub use parsynt_synth::SynthConfig;
